// The reusable slide-lifecycle engine every execution path runs on.
//
// StreamApprox processes a stream as a sequence of event-time slides; for
// each slide it must (1) hold an OASRS sampler while the slide is open,
// (2) close the slide once the low-watermark passes its end, turning the
// sample into per-stratum summary cells, (3) assemble closed slides into
// sliding windows, and (4) fan each assembled window out to every registered
// QuerySink (core/query.h), whose observed error bounds feed back into the
// sample budget (§4.2 adaptive feedback, strictest query wins). The driver
// itself is lifecycle-only: what gets evaluated — which aggregations, which
// histograms, at which confidence — lives entirely in the query registry,
// so N concurrent queries ride one ingested, sampled, windowed stream.
//
// That lifecycle used to live inline in StreamApprox::run(); it is extracted
// here so three execution paths can share it:
//
//   * the sequential live path  — offer()/advance(watermark)/finish(), the
//     driver owns one sampler per open slide; the caller owns the watermark;
//   * the sharded live path     — N workers sample their partition subsets
//     locally, a merger OasrsSampler::merge()s them and hands the merged
//     sample to close_slide_sample();
//   * the evaluation harness    — engines produce per-slide cells directly
//     and hand them to close_slide_cells() (core/systems.cpp).
//
// Dynamic query lifecycle. The registry is LIVE: attach_query() and
// detach_query() may be called from any thread while the lifecycle runs.
// Control operations are generation-stamped and queued; the lifecycle
// thread applies them at the next slide-close boundary, so
//
//   * an attached sink observes every slide from its boundary on and
//     evaluates only windows whose EVERY slide it observed — no
//     partial-window results (its first window starts at or after the
//     attach boundary);
//   * a detached sink stops at its boundary, its FeedbackController retires
//     with it, and the FeedbackBank's strictest-target budget is rebuilt;
//   * the data plane is untouched: workers and the sampling hot path never
//     see the control mutex — complete_slide reads one atomic generation
//     counter per slide and takes the lock only when membership actually
//     changed (the RCU-ish "check a stamp, swap at a safe point" shape).
//
// Thread safety: exactly one thread may drive the lifecycle
// (offer/advance/finish/close_slide_*). attach_query/detach_query/
// registry_generation are safe from any thread, as is current_budget()
// (atomic: sharded workers pick up re-tuned budgets for newly opened slides
// without synchronising with the merger). Everything else is
// lifecycle-thread-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/queue.h"
#include "core/query.h"
#include "engine/query_cost.h"
#include "engine/window.h"
#include "estimation/cost_function.h"
#include "estimation/feedback.h"
#include "estimation/histogram_query.h"
#include "sampling/oasrs.h"

namespace streamapprox::core {

/// Per-window output delivered to the user: every registered query's
/// evaluated result plus the sampling effort that produced them. The
/// sampling counters are per WINDOW, not per query — the stream is sampled
/// once regardless of how many queries are registered.
struct WindowOutput {
  /// The first registered query's estimate (the single query of a legacy
  /// config); `queries` carries every registered query's output.
  WindowEstimate estimate;
  std::uint64_t records_seen = 0;     ///< Σ C_i in the window
  std::uint64_t records_sampled = 0;  ///< Σ Y_i in the window
  std::size_t budget_in_force = 0;    ///< per-slide sample budget used
  /// The first registered HISTOGRAM query's histogram (the legacy config's
  /// optional histogram): bucket masses estimate full-population counts.
  std::optional<Histogram> histogram;
  /// Every registered query's output, in registration order. Queries
  /// attached mid-stream appear only from their first whole window on.
  std::vector<QueryOutput> queries;
};

/// A per-query output channel: the consumer end of an SPSC ring the
/// lifecycle thread publishes one WindowOutput into per eligible window.
/// Obtained from attach_query(); lets each consumer drain its query's
/// results at its own pace instead of sharing the run's single WindowOutput
/// callback.
///
/// Thread safety: poll()/finished()/dropped() may be called by ONE consumer
/// thread (SPSC discipline — the lifecycle thread is the only producer).
/// The ring closes when the query is detached or the driver is destroyed;
/// buffered outputs remain drainable after close.
class QuerySubscription {
 public:
  /// Creates a channel buffering up to `capacity` window outputs.
  explicit QuerySubscription(std::size_t capacity) : ring_(capacity) {}

  /// Non-blocking: the next buffered window output, or nullopt when none is
  /// ready yet.
  std::optional<WindowOutput> poll() { return ring_.try_pop(); }

  /// Non-blocking batch drain: appends up to `max` buffered outputs to
  /// `out` in one ring synchronisation and returns the number taken — a
  /// consumer catching up after a stall pays one acquire/release per fill
  /// instead of per element.
  std::size_t poll_n(std::vector<WindowOutput>& out, std::size_t max) {
    return ring_.pop_n(out, max);
  }

  /// True once the query was detached (or the run ended) AND every buffered
  /// output has been drained — the consumer's termination condition.
  bool finished() const { return ring_.drained(); }

  /// Window outputs discarded because the ring was full when the lifecycle
  /// thread published (the consumer fell behind; the lifecycle never blocks
  /// on a slow subscriber). Size the capacity for the consumer's drain rate.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class PipelineDriver;
  /// The facade closes channels of pre-run attaches it cancels or discards
  /// (no driver exists yet to do it).
  friend class StreamApprox;

  /// Lifecycle thread only: non-blocking publish, drop-newest when full.
  void publish(WindowOutput output) {
    if (!ring_.try_push(std::move(output))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Lifecycle thread (detach boundary) or driver teardown.
  void close() { ring_.close(); }

  SpscRing<WindowOutput> ring_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Configuration of the slide lifecycle.
struct PipelineDriverConfig {
  /// The registered queries evaluated per window. When empty (and `evaluate`
  /// is true) the legacy single-query fields below are mapped onto a
  /// one-entry set: `query` (+ `histogram` when set) at confidence `z`.
  QuerySet queries;
  /// Legacy single streaming query, used only when `queries` is empty.
  QuerySpec query{};
  /// The user's query budget (fraction / latency / tokens / accuracy). An
  /// accuracy budget becomes the default target of registered aggregate
  /// queries that carry no explicit per-query target.
  estimation::QueryBudget budget = estimation::QueryBudget::fraction(0.6);
  /// Sliding-window geometry.
  engine::WindowConfig window{};
  /// Per-record query cost model, charged against sampled items at close.
  engine::QueryCost query_cost{};
  /// Default confidence (standard deviations) for bounds and the feedback
  /// loop; individual queries may override it per sink.
  double z = 2.0;
  /// Legacy optional approximate HISTOGRAM query (§3.2), used only when
  /// `queries` is empty.
  std::optional<estimation::HistogramSpec> histogram;
  /// RNG seed; per-slide sampler seeds are derived deterministically.
  std::uint64_t seed = 2017;
  /// Sample budget before any arrival statistics exist; the cost function /
  /// feedback loop re-tunes it from the first completed slide on.
  std::size_t initial_budget = 1024;
  /// Per-slide samplers use the skip-ahead kernel (Algorithm L bulk offers,
  /// O(accepted) on saturated reservoirs). Distribution-identical to, but
  /// not bit-identical with, the Algorithm R path that `false` restores.
  bool skip_ahead_sampling = true;
  /// When false, windows are reported raw (on_window) without query
  /// evaluation — the evaluation harness computes its own metrics.
  bool evaluate = true;
};

/// Drives slides from open to closed to windowed, with adaptive feedback
/// and a live query registry. See the file comment for the threading model.
class PipelineDriver {
 public:
  /// The per-slide OASRS sampler type shared by all execution paths.
  using Sampler =
      sampling::OasrsSampler<engine::Record, engine::RecordStratum>;
  using OutputFn = std::function<void(const WindowOutput&)>;
  /// Takes the window by value: raw-window mode moves it out, keeping the
  /// evaluation harness's timed loop free of per-window cell copies.
  using WindowFn = std::function<void(engine::WindowResult)>;

  /// Creates a driver. `on_output` receives evaluated window outputs (may be
  /// null when config.evaluate is false); `on_window` receives the raw
  /// window cells (may be null).
  PipelineDriver(PipelineDriverConfig config, OutputFn on_output,
                 WindowFn on_window = {});

  /// Closes every live subscription channel so consumers observe
  /// finished() once they drain.
  ~PipelineDriver();

  // ---- Sequential ingest path (lifecycle thread only) --------------------

  /// Routes one record into its slide's sampler. Records belonging to
  /// already-closed slides (late beyond the watermark) are dropped. Returns
  /// true when the record was accepted.
  bool offer(const engine::Record& record);

  /// Batched hot path: routes a whole batch with one slide lookup per run of
  /// consecutive same-slide records (event-time-ordered input makes runs
  /// long), dropping late records per the offer() rule. Returns the number
  /// of records accepted.
  std::size_t offer_batch(const engine::Record* records, std::size_t count);

  /// Convenience overload over a whole vector.
  std::size_t offer_batch(const std::vector<engine::Record>& records) {
    return offer_batch(records.data(), records.size());
  }

  /// Closes every slide whose end `watermark` has passed. The caller owns
  /// the watermark computation (per-partition clocks with exhausted and
  /// idle partitions excluded — see StreamApprox::run_sequential /
  /// run_sharded); the driver owns only the slide lifecycle. Returns the
  /// number of slides closed.
  std::size_t advance(std::int64_t watermark);

  /// Input exhausted: flushes every remaining open slide in order, padding
  /// interior empty slides so the window assembler stays aligned.
  void finish();

  // ---- External-sampler path (sharded merger, evaluation harness) --------
  // Lifecycle thread only.

  /// Closes `slide` with an externally produced stratified sample. Slides
  /// must arrive in increasing order; interior gaps are padded with empty
  /// slides. The first call pins the cold-start slide index.
  void close_slide_sample(std::int64_t slide,
                          sampling::StratifiedSample<engine::Record> sample);

  /// As above, additionally carrying the merged worker-local sketch state
  /// for the slide — the sharded merger folds its shards' SlideSketches
  /// together (exact, order-insensitive) and hands the result here so
  /// sketch sinks see the same state the sequential path would produce.
  void close_slide_sample(std::int64_t slide,
                          sampling::StratifiedSample<engine::Record> sample,
                          sketch::SlideSketches sketches);

  /// Closes `slide` with pre-summarised cells (engines that aggregate
  /// without materialising a sample). Same ordering contract as
  /// close_slide_sample. No histogram contribution.
  void close_slide_cells(std::int64_t slide,
                         std::vector<estimation::StratumSummary> cells);

  /// Sampler configuration for one shard of one slide. The seed is
  /// deterministic in (driver seed, slide, shard); shard 0 of 1 reproduces
  /// the sequential path's sampler exactly. The total budget in force is
  /// split across `shards` by STRATUM OCCUPANCY when it is known —
  /// `shard_strata` sub-streams routed to this shard out of `total_strata`
  /// overall gets budget * shard_strata / total_strata — and by the flat
  /// budget / shards fallback when occupancy is not supplied (either count
  /// 0). The flat split undershoots whenever strata spread unevenly (3
  /// strata over 4 workers sample ~half the budget); occupancy-aware shares
  /// restore Σ shard budgets ≈ budget. Safe from any thread (reads only the
  /// atomic budget and immutable config).
  sampling::OasrsConfig slide_sampler_config(std::int64_t slide,
                                             std::size_t shard = 0,
                                             std::size_t shards = 1,
                                             std::size_t shard_strata = 0,
                                             std::size_t total_strata = 0)
      const;

  /// Immutable snapshot of the sketch specs in force — sharded workers take
  /// one when they open a per-slide state to provision its SlideSketches.
  /// Rebuilt at registration boundaries; safe from any thread.
  std::shared_ptr<const sketch::SketchPlan> sketch_plan() const;

  // ---- Dynamic query lifecycle (safe from ANY thread) --------------------

  /// Queues `sink` for attachment at the next slide-close boundary. From
  /// that boundary the sink observes every closed slide (on_slide) and
  /// evaluates every window all of whose slides it observed — it never
  /// reports a window that was partially assembled before attach. When
  /// `subscription_capacity` > 0 the query gets its own output channel
  /// (returned; drain with QuerySubscription::poll) in addition to
  /// appearing in the shared WindowOutput::queries; with capacity 0 no
  /// channel is created and nullptr is returned. If the sink carries an
  /// accuracy target (explicit, or inherited from an accuracy-kind budget),
  /// its FeedbackController joins the bank seeded at the budget currently
  /// in force.
  std::shared_ptr<QuerySubscription> attach_query(
      std::unique_ptr<QuerySink> sink, std::size_t subscription_capacity = 0);

  /// As above with a caller-provided channel (may be null) — the facade
  /// uses this to create subscriptions before the driver exists.
  void attach_query(std::unique_ptr<QuerySink> sink,
                    std::shared_ptr<QuerySubscription> subscription);

  /// Queues detachment of the first query registered under `name`, effective
  /// at the next slide-close boundary: the sink stops observing slides, its
  /// controller (if any) retires and the FeedbackBank budget is rebuilt
  /// from the remaining targets, and its subscription channel (if any)
  /// closes after the buffered outputs. Returns true when a live query or a
  /// still-pending attach matched (a pending attach is simply cancelled);
  /// false when the name is unknown.
  bool detach_query(const std::string& name);

  /// Monotone registry generation: bumps every time attach/detach
  /// operations actually take effect at a boundary. Lets tests and
  /// monitors await "membership changed".
  std::uint64_t registry_generation() const noexcept {
    return registry_generation_.load(std::memory_order_acquire);
  }

  /// Number of live (boundary-applied) queries.
  std::size_t query_count() const noexcept {
    return live_query_count_.load(std::memory_order_acquire);
  }

  // ---- Introspection ------------------------------------------------------

  /// The per-slide sample budget currently in force (atomic: sharded workers
  /// read it concurrently with the merger re-tuning it).
  std::size_t current_budget() const noexcept {
    return slide_budget_.load(std::memory_order_relaxed);
  }

  /// The next slide index to close; nullopt before the first record/close
  /// (the cold-start fix: a stream starting at a large event time does not
  /// sweep through millions of empty slides from zero). Lifecycle thread
  /// only.
  std::optional<std::int64_t> next_to_close() const noexcept {
    return next_to_close_;
  }

  /// Windows emitted so far. Lifecycle thread only.
  std::uint64_t windows_emitted() const noexcept { return windows_emitted_; }

  /// The window geometry in force. Immutable after construction.
  const engine::WindowConfig& window_config() const noexcept {
    return config_.window;
  }

 private:
  /// One live registry entry: the sink plus its lifecycle bookkeeping.
  struct RegisteredQuery {
    std::unique_ptr<QuerySink> sink;
    /// Stable FeedbackBank id when the query drives a controller.
    std::optional<std::size_t> controller;
    /// First slide index (assembler-relative) whose window this query may
    /// evaluate: attach_slide + slides_per_window - 1, so every evaluated
    /// window consists solely of slides the sink observed.
    std::uint64_t first_window_slide = 0;
    /// Optional per-query output channel.
    std::shared_ptr<QuerySubscription> subscription;
  };

  /// A queued control-plane operation (attach or detach).
  struct PendingOp {
    std::unique_ptr<QuerySink> sink;  ///< attach when set
    std::shared_ptr<QuerySubscription> subscription;
    std::string detach_name;          ///< detach when sink is null
  };

  /// Registers one sink into the live registry (constructor seeding and
  /// boundary attach share it). Lifecycle thread only.
  void register_sink(std::unique_ptr<QuerySink> sink,
                     std::shared_ptr<QuerySubscription> subscription,
                     std::uint64_t attach_slide, std::size_t seed_budget);

  /// Applies queued attach/detach operations at a slide-close boundary and
  /// rebuilds the feedback budget if membership changed. Cheap when nothing
  /// is pending (one relaxed atomic load).
  void apply_pending_ops();

  /// The config-level fallback accuracy target (set when the run's budget
  /// is accuracy-kind).
  std::optional<double> fallback_target() const;

  /// Per-open-slide state on the sequential path: the OASRS sampler plus
  /// the sketch states collecting beside it over the full record stream.
  struct OpenSlide {
    Sampler sampler;
    sketch::SlideSketches sketches;
  };

  /// Looks up (or opens) the state of `slide` on the sequential path.
  OpenSlide& slide_for(std::int64_t slide);

  /// Rebuilds the published sketch plan from the live registry. Lifecycle
  /// thread only (constructor seeding and registration boundaries).
  void publish_sketch_plan();

  /// Closes one slide owned by the internal map (sequential path).
  void close_internal(std::int64_t slide);

  /// Pads empty closed slides so `slide` becomes the next to close.
  void pad_until(std::int64_t slide);

  /// The shared lifecycle tail: pending registry ops apply, then cells
  /// (+ the materialised sample when one exists) of one closed slide go
  /// through every registered sink's slide hook, the window assembler, the
  /// query fan-out (shared callback + per-query channels) and the feedback
  /// loop.
  void complete_slide(std::vector<estimation::StratumSummary> cells,
                      const sampling::StratifiedSample<engine::Record>* sample,
                      const sketch::SlideSketches* sketches);

  PipelineDriverConfig config_;
  OutputFn on_output_;
  WindowFn on_window_;

  engine::SlidingWindowAssembler assembler_;
  estimation::CostFunction cost_function_;
  /// One controller per accuracy-targeted query; budget = max across them.
  estimation::FeedbackBank feedback_;
  std::atomic<std::size_t> slide_budget_;

  /// The live query registry in registration order. Lifecycle thread only;
  /// other threads interact via the control plane below.
  std::vector<RegisteredQuery> queries_;

  // ---- Control plane (attach/detach hand-off) ----------------------------
  /// Guards pending_ and live_names_. Never taken on the data hot path: the
  /// lifecycle thread takes it at most once per slide close, and only when
  /// the generation stamp says something is pending.
  mutable std::mutex control_mutex_;
  std::vector<PendingOp> pending_;
  /// Names of the live queries, mirrored under control_mutex_ so
  /// detach_query can validate without touching the lifecycle-owned
  /// registry.
  std::vector<std::string> live_names_;
  /// Bumped on every enqueue; lifecycle thread compares against
  /// applied_generation_ to skip the lock when nothing is pending.
  std::atomic<std::uint64_t> control_generation_{0};
  std::uint64_t applied_generation_ = 0;  ///< lifecycle thread only
  std::atomic<std::uint64_t> registry_generation_{0};
  std::atomic<std::size_t> live_query_count_{0};

  // ---- Sketch plan (worker-visible spec snapshot) ------------------------
  /// Guards sketch_plan_ only (leaf lock: taken under control_mutex_ when
  /// registration rebuilds the plan, and alone by workers snapshotting it).
  mutable std::mutex sketch_plan_mutex_;
  std::shared_ptr<const sketch::SketchPlan> sketch_plan_;
  /// Next sketch-spec id to assign (ids are unique per driver).
  std::uint64_t next_sketch_id_ = 1;

  std::map<std::int64_t, OpenSlide> open_slides_;
  std::optional<std::int64_t> next_to_close_;
  bool closed_any_ = false;

  std::uint64_t last_slide_seen_ = 0;
  std::vector<estimation::StratumSummary> last_cells_;
  std::uint64_t windows_emitted_ = 0;
};

}  // namespace streamapprox::core
