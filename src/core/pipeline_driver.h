// The reusable slide-lifecycle engine every execution path runs on.
//
// StreamApprox processes a stream as a sequence of event-time slides; for
// each slide it must (1) hold an OASRS sampler while the slide is open,
// (2) close the slide once the low-watermark passes its end, turning the
// sample into per-stratum summary cells, (3) assemble closed slides into
// sliding windows, and (4) fan each assembled window out to every registered
// QuerySink (core/query.h), whose observed error bounds feed back into the
// sample budget (§4.2 adaptive feedback, strictest query wins). The driver
// itself is lifecycle-only: what gets evaluated — which aggregations, which
// histograms, at which confidence — lives entirely in the query registry,
// so N concurrent queries ride one ingested, sampled, windowed stream.
//
// That lifecycle used to live inline in StreamApprox::run(); it is extracted
// here so three execution paths can share it:
//
//   * the sequential live path  — offer()/advance(watermark)/finish(), the
//     driver owns one sampler per open slide; the caller owns the watermark;
//   * the sharded live path     — N workers sample their partition subsets
//     locally, a merger OasrsSampler::merge()s them and hands the merged
//     sample to close_slide_sample();
//   * the evaluation harness    — engines produce per-slide cells directly
//     and hand them to close_slide_cells() (core/systems.cpp).
//
// The driver is not thread-safe: exactly one thread may drive the lifecycle.
// The single exception is current_budget(), which is atomic so sharded
// workers can pick up re-tuned budgets for newly opened slides without
// synchronising with the merger.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "core/query.h"
#include "engine/query_cost.h"
#include "engine/window.h"
#include "estimation/cost_function.h"
#include "estimation/feedback.h"
#include "estimation/histogram_query.h"
#include "sampling/oasrs.h"

namespace streamapprox::core {

/// Per-window output delivered to the user: every registered query's
/// evaluated result plus the sampling effort that produced them. The
/// sampling counters are per WINDOW, not per query — the stream is sampled
/// once regardless of how many queries are registered.
struct WindowOutput {
  /// The first registered query's estimate (the single query of a legacy
  /// config); `queries` carries every registered query's output.
  WindowEstimate estimate;
  std::uint64_t records_seen = 0;     ///< Σ C_i in the window
  std::uint64_t records_sampled = 0;  ///< Σ Y_i in the window
  std::size_t budget_in_force = 0;    ///< per-slide sample budget used
  /// The first registered HISTOGRAM query's histogram (the legacy config's
  /// optional histogram): bucket masses estimate full-population counts.
  std::optional<Histogram> histogram;
  /// Every registered query's output, in registration order.
  std::vector<QueryOutput> queries;
};

/// Configuration of the slide lifecycle.
struct PipelineDriverConfig {
  /// The registered queries evaluated per window. When empty (and `evaluate`
  /// is true) the legacy single-query fields below are mapped onto a
  /// one-entry set: `query` (+ `histogram` when set) at confidence `z`.
  QuerySet queries;
  /// Legacy single streaming query, used only when `queries` is empty.
  QuerySpec query{};
  /// The user's query budget (fraction / latency / tokens / accuracy). An
  /// accuracy budget becomes the default target of registered aggregate
  /// queries that carry no explicit per-query target.
  estimation::QueryBudget budget = estimation::QueryBudget::fraction(0.6);
  /// Sliding-window geometry.
  engine::WindowConfig window{};
  /// Per-record query cost model, charged against sampled items at close.
  engine::QueryCost query_cost{};
  /// Default confidence (standard deviations) for bounds and the feedback
  /// loop; individual queries may override it per sink.
  double z = 2.0;
  /// Legacy optional approximate HISTOGRAM query (§3.2), used only when
  /// `queries` is empty.
  std::optional<estimation::HistogramSpec> histogram;
  /// RNG seed; per-slide sampler seeds are derived deterministically.
  std::uint64_t seed = 2017;
  /// Sample budget before any arrival statistics exist; the cost function /
  /// feedback loop re-tunes it from the first completed slide on.
  std::size_t initial_budget = 1024;
  /// When false, windows are reported raw (on_window) without query
  /// evaluation — the evaluation harness computes its own metrics.
  bool evaluate = true;
};

/// Drives slides from open to closed to windowed, with adaptive feedback.
class PipelineDriver {
 public:
  /// The per-slide OASRS sampler type shared by all execution paths.
  using Sampler =
      sampling::OasrsSampler<engine::Record, engine::RecordStratum>;
  using OutputFn = std::function<void(const WindowOutput&)>;
  /// Takes the window by value: raw-window mode moves it out, keeping the
  /// evaluation harness's timed loop free of per-window cell copies.
  using WindowFn = std::function<void(engine::WindowResult)>;

  /// Creates a driver. `on_output` receives evaluated window outputs (may be
  /// null when config.evaluate is false); `on_window` receives the raw
  /// window cells (may be null).
  PipelineDriver(PipelineDriverConfig config, OutputFn on_output,
                 WindowFn on_window = {});

  // ---- Sequential ingest path --------------------------------------------

  /// Routes one record into its slide's sampler. Records belonging to
  /// already-closed slides (late beyond the watermark) are dropped. Returns
  /// true when the record was accepted.
  bool offer(const engine::Record& record);

  /// Batched hot path: routes a whole batch with one slide lookup per run of
  /// consecutive same-slide records (event-time-ordered input makes runs
  /// long), dropping late records per the offer() rule. Returns the number
  /// of records accepted.
  std::size_t offer_batch(const engine::Record* records, std::size_t count);

  /// Convenience overload over a whole vector.
  std::size_t offer_batch(const std::vector<engine::Record>& records) {
    return offer_batch(records.data(), records.size());
  }

  /// Closes every slide whose end `watermark` has passed. The caller owns
  /// the watermark computation (per-partition clocks with exhausted and
  /// idle partitions excluded — see StreamApprox::run_sequential /
  /// run_sharded); the driver owns only the slide lifecycle. Returns the
  /// number of slides closed.
  std::size_t advance(std::int64_t watermark);

  /// Input exhausted: flushes every remaining open slide in order, padding
  /// interior empty slides so the window assembler stays aligned.
  void finish();

  // ---- External-sampler path (sharded merger, evaluation harness) --------

  /// Closes `slide` with an externally produced stratified sample. Slides
  /// must arrive in increasing order; interior gaps are padded with empty
  /// slides. The first call pins the cold-start slide index.
  void close_slide_sample(std::int64_t slide,
                          sampling::StratifiedSample<engine::Record> sample);

  /// Closes `slide` with pre-summarised cells (engines that aggregate
  /// without materialising a sample). Same ordering contract as
  /// close_slide_sample. No histogram contribution.
  void close_slide_cells(std::int64_t slide,
                         std::vector<estimation::StratumSummary> cells);

  /// Sampler configuration for one shard of one slide: the total budget in
  /// force is split evenly across `shards`, and the seed is deterministic in
  /// (driver seed, slide, shard). shard 0 of 1 reproduces the sequential
  /// path's sampler exactly.
  sampling::OasrsConfig slide_sampler_config(std::int64_t slide,
                                             std::size_t shard = 0,
                                             std::size_t shards = 1) const;

  // ---- Introspection ------------------------------------------------------

  /// The per-slide sample budget currently in force (atomic: sharded workers
  /// read it concurrently with the merger re-tuning it).
  std::size_t current_budget() const noexcept {
    return slide_budget_.load(std::memory_order_relaxed);
  }

  /// The next slide index to close; nullopt before the first record/close
  /// (the cold-start fix: a stream starting at a large event time does not
  /// sweep through millions of empty slides from zero).
  std::optional<std::int64_t> next_to_close() const noexcept {
    return next_to_close_;
  }

  /// Windows emitted so far.
  std::uint64_t windows_emitted() const noexcept { return windows_emitted_; }

  /// The window geometry in force.
  const engine::WindowConfig& window_config() const noexcept {
    return config_.window;
  }

 private:
  /// Looks up (or opens) the sampler of `slide` on the sequential path.
  Sampler& sampler_for(std::int64_t slide);

  /// Closes one slide owned by the internal map (sequential path).
  void close_internal(std::int64_t slide);

  /// Pads empty closed slides so `slide` becomes the next to close.
  void pad_until(std::int64_t slide);

  /// The shared lifecycle tail: cells (+ the materialised sample when one
  /// exists) of one closed slide go through every registered sink's slide
  /// hook, the window assembler, the query fan-out and the feedback loop.
  void complete_slide(std::vector<estimation::StratumSummary> cells,
                      const sampling::StratifiedSample<engine::Record>* sample);

  PipelineDriverConfig config_;
  OutputFn on_output_;
  WindowFn on_window_;

  engine::SlidingWindowAssembler assembler_;
  estimation::CostFunction cost_function_;
  /// One controller per accuracy-targeted query; budget = max across them.
  estimation::FeedbackBank feedback_;
  std::atomic<std::size_t> slide_budget_;

  /// The query registry in execution order (cloned from the config's set, or
  /// synthesised from the legacy single-query fields when that set is empty).
  std::vector<std::unique_ptr<QuerySink>> sinks_;
  /// Indices into `sinks_` of the queries driving feedback controllers, in
  /// controller order.
  std::vector<std::size_t> feedback_sinks_;

  std::map<std::int64_t, Sampler> open_slides_;
  std::optional<std::int64_t> next_to_close_;
  bool closed_any_ = false;

  std::uint64_t last_slide_seen_ = 0;
  std::vector<estimation::StratumSummary> last_cells_;
  std::uint64_t windows_emitted_ = 0;
};

}  // namespace streamapprox::core
