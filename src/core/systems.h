// The six systems of the paper's evaluation (§5, Figures 4-10):
//
//   Flink-based StreamApprox   pipelined engine + OASRS operator
//   Spark-based StreamApprox   batched engine, OASRS before RDD formation
//   Spark-based SRS            batched engine, distributed ScaSRS per batch
//   Spark-based STS            batched engine, shuffle groupBy + per-stratum
//                              SRS (sampleByKeyExact)
//   Native Spark               batched engine, no sampling (exact)
//   Native Flink               pipelined engine, no sampling (exact)
//
// run_system executes one of them over a pre-generated, event-time-sorted
// record stream in saturation mode and returns the completed windows plus
// wall-clock throughput — the measurement methodology of §6.1.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/batched/micro_batch.h"
#include "engine/query_cost.h"
#include "engine/record.h"
#include "engine/window.h"

namespace streamapprox::core {

/// The evaluated system variants.
enum class SystemKind {
  kFlinkApprox,
  kSparkApprox,
  kSparkSRS,
  kSparkSTS,
  kNativeSpark,
  kNativeFlink,
};

/// All six, in the paper's legend order.
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kFlinkApprox, SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,    SystemKind::kSparkSTS,
    SystemKind::kNativeSpark, SystemKind::kNativeFlink,
};

/// Paper-style display name ("Flink-based StreamApprox", ...).
std::string system_name(SystemKind kind);

/// True for the two no-sampling baselines.
bool is_native(SystemKind kind);

/// True for the two systems running on the batched (Spark-like) engine
/// micro-batch path... including the native Spark baseline.
bool is_batched(SystemKind kind);

/// Execution configuration shared by all systems.
struct SystemConfig {
  /// Sampling fraction f in (0,1]; ignored by the native systems.
  double sampling_fraction = 0.6;
  /// Worker threads: executor cores for the batched engine, operator
  /// parallelism for the pipelined engine.
  std::size_t workers = 4;
  /// RDD partitions per micro-batch (0 => 2 * workers).
  std::size_t partitions = 0;
  /// Micro-batch interval (batched engine only); must divide the window
  /// slide.
  std::int64_t batch_interval_us = 500'000;
  /// Sliding-window geometry (paper default 10 s / 5 s).
  engine::WindowConfig window{};
  /// Per-record query cost (see engine/query_cost.h).
  engine::QueryCost query_cost{32};
  /// Per-stage driver dispatch overhead of the batched engine.
  std::chrono::microseconds stage_overhead{500};
  /// Use sampleByKeyExact (ScaSRS) inside STS; false = sampleByKey
  /// (per-stratum Bernoulli).
  bool sts_exact = true;
  /// RNG seed for all sampling decisions.
  std::uint64_t seed = 42;
};

/// Runs one system over the stream and returns windows + throughput.
engine::batched::StreamRunResult run_system(
    SystemKind kind, const std::vector<engine::Record>& records,
    const SystemConfig& config);

}  // namespace streamapprox::core
