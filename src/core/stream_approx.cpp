#include "core/stream_approx.h"

#include <algorithm>
#include <vector>

#include "common/clock.h"
#include "core/watermark.h"
#include "engine/window.h"

namespace streamapprox::core {

StreamApprox::StreamApprox(ingest::Broker& broker, StreamApproxConfig config)
    : broker_(broker), config_(std::move(config)) {
  // Validated eagerly so misconfiguration fails at construction.
  engine::SlidingWindowAssembler probe(config_.window);
  (void)probe;
  broker_.topic(config_.topic);  // throws if missing
}

PipelineDriverConfig StreamApprox::driver_config() const {
  PipelineDriverConfig driver;
  driver.queries = config_.queries;
  driver.query = config_.query;
  driver.budget = config_.budget;
  driver.window = config_.window;
  driver.query_cost = config_.query_cost;
  driver.z = config_.z;
  driver.histogram = config_.histogram;
  driver.seed = config_.seed;
  return driver;
}

void StreamApprox::run(
    const std::function<void(const WindowOutput&)>& on_window) {
  // The exchange decouples workers from partitions, so any workers > 1 can
  // shard; without it, sharding needs at least two partitions to split.
  if (config_.workers > 1 &&
      (config_.use_exchange ||
       broker_.topic(config_.topic).partition_count() > 1)) {
    run_sharded(on_window);
  } else {
    run_sequential(on_window);
  }
}

void StreamApprox::run_sequential(
    const std::function<void(const WindowOutput&)>& on_window) {
  auto& topic = broker_.topic(config_.topic);
  ingest::Consumer consumer(broker_, config_.topic);
  PipelineDriver driver(driver_config(), on_window);
  slide_budget_ = driver.current_budget();

  // Per-partition high-water clocks driving the shared low-watermark policy
  // (core/watermark.h): records from a partition whose backlog happens to
  // be polled late are never dropped as spuriously "late", yet an idle
  // partition cannot stall a live stream's windows.
  std::vector<std::int64_t> clocks(topic.partition_count(), kNoClock);
  Stopwatch idle_watch;

  // The ingest-work accumulator feeds a volatile sink so the parse-work
  // model cannot be dead-code-eliminated.
  double ingest_acc = 0.0;
  // Reused poll buffer: steady-state polling is allocation-free.
  std::vector<engine::Record> records;
  records.reserve(config_.poll_batch);
  for (;;) {
    consumer.poll(records, config_.poll_batch, /*timeout_ms=*/50);
    for (const auto& record : records) {
      ingest_acc += config_.ingest_cost.charge(record.value);  // parse work
      auto& clock = clocks[topic.partition_for_key(record.stratum)];
      clock = std::max(clock, record.event_time_us);
    }
    driver.offer_batch(records);
    for (std::size_t slot = 0; slot < consumer.assignment().size(); ++slot) {
      if (consumer.partition_exhausted(slot)) {
        clocks[consumer.assignment()[slot]] = kPartitionDrained;
      }
    }
    const bool grace_over =
        idle_watch.millis() > static_cast<double>(
                                  config_.idle_partition_timeout_ms);
    const auto view = evaluate_watermark(clocks, grace_over);
    if (view.can_close()) {
      driver.advance(view.watermark);
    } else if (view.flush_all()) {
      // No partition gates (drained and/or idle past grace): flush what is
      // buffered so output is never stranded behind an unsealed idle
      // partition. Idempotent, and also covers end-of-stream.
      driver.finish();
    }
    slide_budget_ = driver.current_budget();
    if (records.empty() && consumer.exhausted()) break;
  }
  volatile double ingest_sink = ingest_acc;
  (void)ingest_sink;
  driver.finish();
  slide_budget_ = driver.current_budget();
}

}  // namespace streamapprox::core
