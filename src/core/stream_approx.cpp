#include "core/stream_approx.h"

#include <algorithm>
#include <vector>

#include "common/clock.h"
#include "core/watermark.h"
#include "engine/window.h"

namespace streamapprox::core {

StreamApprox::StreamApprox(ingest::Broker& broker, StreamApproxConfig config)
    : broker_(broker), config_(std::move(config)) {
  // Validated eagerly so misconfiguration fails at construction.
  engine::SlidingWindowAssembler probe(config_.window);
  (void)probe;
  broker_.topic(config_.topic);  // throws if missing
}

std::shared_ptr<QuerySubscription> StreamApprox::attach_query(
    std::unique_ptr<QuerySink> sink, std::size_t subscription_capacity) {
  if (!sink) return nullptr;
  std::lock_guard lock(control_mutex_);
  if (live_driver_ != nullptr) {
    return live_driver_->attach_query(std::move(sink), subscription_capacity);
  }
  // No run yet: create the channel now and queue the attach for the next
  // run's driver, where it applies before the first slide closes.
  PendingAttach pending;
  pending.sink = std::move(sink);
  if (subscription_capacity > 0) {
    pending.subscription =
        std::make_shared<QuerySubscription>(subscription_capacity);
  }
  auto subscription = pending.subscription;
  pre_run_attaches_.push_back(std::move(pending));
  return subscription;
}

bool StreamApprox::detach_query(const std::string& name) {
  std::lock_guard lock(control_mutex_);
  if (live_driver_ != nullptr) return live_driver_->detach_query(name);
  for (auto it = pre_run_attaches_.begin(); it != pre_run_attaches_.end();
       ++it) {
    if (it->sink->name() == name) {
      // The cancelled attach never reaches a driver: close its channel here
      // so a waiting consumer observes finished().
      if (it->subscription) it->subscription->close();
      pre_run_attaches_.erase(it);
      return true;
    }
  }
  // A config-registered query: queue the detach so the next run's driver
  // drops it before the first slide closes. A name already slated is gone
  // as far as the caller is concerned — don't queue (and count) it twice.
  if (config_has_query(name) &&
      std::find(pre_run_detaches_.begin(), pre_run_detaches_.end(), name) ==
          pre_run_detaches_.end()) {
    pre_run_detaches_.push_back(name);
    return true;
  }
  return false;
}

bool StreamApprox::config_has_query(const std::string& name) const {
  if (!config_.queries.empty()) {
    for (const auto& sink : config_.queries.sinks()) {
      if (sink->name() == name) return true;
    }
    return false;
  }
  // An empty set synthesizes the legacy sinks "query" (+ "histogram") at
  // driver construction; pre-run control must address them by those names
  // exactly as a running driver would.
  return name == "query" || (config_.histogram && name == "histogram");
}

StreamApprox::~StreamApprox() {
  // Pre-run attaches that never reached a driver still hold live channels:
  // close them so consumers are not left waiting on finished().
  std::lock_guard lock(control_mutex_);
  for (auto& pending : pre_run_attaches_) {
    if (pending.subscription) pending.subscription->close();
  }
}

std::size_t StreamApprox::query_count() const {
  std::lock_guard lock(control_mutex_);
  if (live_driver_ != nullptr) return live_driver_->query_count();
  // Mirror the driver's construction rule: an empty set synthesizes the
  // legacy "query" sink plus "histogram" when configured.
  const std::size_t configured =
      config_.queries.empty() ? (config_.histogram ? 2 : 1)
                              : config_.queries.size();
  const std::size_t total = configured + pre_run_attaches_.size();
  return total > pre_run_detaches_.size() ? total - pre_run_detaches_.size()
                                          : 0;
}

void StreamApprox::install_driver(PipelineDriver& driver) {
  std::lock_guard lock(control_mutex_);
  for (auto& pending : pre_run_attaches_) {
    driver.attach_query(std::move(pending.sink),
                        std::move(pending.subscription));
  }
  for (const auto& name : pre_run_detaches_) driver.detach_query(name);
  pre_run_attaches_.clear();
  pre_run_detaches_.clear();
  live_driver_ = &driver;
}

void StreamApprox::uninstall_driver() {
  std::lock_guard lock(control_mutex_);
  live_driver_ = nullptr;
}

PipelineDriverConfig StreamApprox::driver_config() const {
  PipelineDriverConfig driver;
  driver.queries = config_.queries;
  driver.query = config_.query;
  driver.budget = config_.budget;
  driver.window = config_.window;
  driver.query_cost = config_.query_cost;
  driver.z = config_.z;
  driver.histogram = config_.histogram;
  driver.seed = config_.seed;
  driver.skip_ahead_sampling = config_.skip_ahead_sampling;
  return driver;
}

void StreamApprox::run(
    const std::function<void(const WindowOutput&)>& on_window) {
  run_stats_ = ShardedRunStats{};
  run_stats_.workers = 1;
  // The exchange decouples workers from partitions, so any workers > 1 can
  // shard; without it, sharding needs at least two partitions to split.
  if (config_.workers > 1 &&
      (config_.use_exchange ||
       broker_.topic(config_.topic).partition_count() > 1)) {
    run_sharded(on_window);
  } else {
    run_sequential(on_window);
  }
}

void StreamApprox::run_sequential(
    const std::function<void(const WindowOutput&)>& on_window) {
  auto& topic = broker_.topic(config_.topic);
  ingest::Consumer consumer(broker_, config_.topic);
  PipelineDriver driver(driver_config(), on_window);
  const DriverInstallation installation(*this, driver);
  slide_budget_ = driver.current_budget();

  // Per-partition high-water clocks driving the shared low-watermark policy
  // (core/watermark.h): records from a partition whose backlog happens to
  // be polled late are never dropped as spuriously "late", yet an idle
  // partition cannot stall a live stream's windows.
  std::vector<std::int64_t> clocks(topic.partition_count(), kNoClock);
  Stopwatch idle_watch;

  // The ingest-work accumulator feeds a volatile sink so the parse-work
  // model cannot be dead-code-eliminated.
  double ingest_acc = 0.0;
  // Reused poll buffer: steady-state polling is allocation-free.
  std::vector<engine::Record> records;
  records.reserve(config_.poll_batch);
  for (;;) {
    consumer.poll(records, config_.poll_batch, /*timeout_ms=*/50);
    for (const auto& record : records) {
      ingest_acc += config_.ingest_cost.charge(record.value);  // parse work
      auto& clock = clocks[topic.partition_for_key(record.stratum)];
      clock = std::max(clock, record.event_time_us);
    }
    driver.offer_batch(records);
    for (std::size_t slot = 0; slot < consumer.assignment().size(); ++slot) {
      if (consumer.partition_exhausted(slot)) {
        clocks[consumer.assignment()[slot]] = kPartitionDrained;
      }
    }
    const bool grace_over =
        idle_watch.millis() > static_cast<double>(
                                  config_.idle_partition_timeout_ms);
    const auto view = evaluate_watermark(clocks, grace_over);
    if (view.can_close()) {
      driver.advance(view.watermark);
    } else if (view.flush_all()) {
      // No partition gates (drained and/or idle past grace): flush what is
      // buffered so output is never stranded behind an unsealed idle
      // partition. Idempotent, and also covers end-of-stream.
      driver.finish();
    }
    slide_budget_ = driver.current_budget();
    if (records.empty() && consumer.exhausted()) break;
  }
  volatile double ingest_sink = ingest_acc;
  (void)ingest_sink;
  driver.finish();
  slide_budget_ = driver.current_budget();
}

}  // namespace streamapprox::core
