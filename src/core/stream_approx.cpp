#include "core/stream_approx.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>

#include "engine/window.h"
#include "estimation/estimators.h"
#include "estimation/histogram_query.h"
#include "sampling/oasrs.h"

namespace streamapprox::core {
namespace {

using Sampler =
    decltype(sampling::make_oasrs<engine::Record>(sampling::OasrsConfig{}));

}  // namespace

StreamApprox::StreamApprox(ingest::Broker& broker, StreamApproxConfig config)
    : broker_(broker), config_(std::move(config)) {
  // Validated eagerly so misconfiguration fails at construction.
  engine::SlidingWindowAssembler probe(config_.window);
  (void)probe;
  broker_.topic(config_.topic);  // throws if missing
}

void StreamApprox::run(
    const std::function<void(const WindowOutput&)>& on_window) {
  ingest::Consumer consumer(broker_, config_.topic);
  engine::SlidingWindowAssembler assembler(config_.window);

  estimation::CostFunction cost_function;
  estimation::FeedbackConfig feedback_config;
  feedback_config.target_relative_error =
      config_.budget.kind == estimation::BudgetKind::kRelativeError
          ? config_.budget.value
          : 0.01;
  estimation::FeedbackController feedback(feedback_config, 1024);

  // Initial budget before any arrival statistics exist; the cost function /
  // feedback loop re-tunes it from the first completed slide on.
  slide_budget_ = 1024;

  // The broker delivers each partition in order, but poll() interleaves
  // partitions, so records are only APPROXIMATELY time-ordered globally.
  // Each event-time slide therefore keeps its own OASRS sampler, and a
  // slide is closed only when the watermark — the lowest per-partition
  // high-water timestamp — passes its end (the standard low-watermark rule;
  // our Kafka-like producer routes by stratum, so strata double as
  // partitions for watermark purposes).
  std::map<std::int64_t, std::unique_ptr<Sampler>> open_slides;
  std::unordered_map<sampling::StratumId, std::int64_t> partition_clock;
  std::int64_t next_to_close = 0;  // slide index to close next
  std::uint64_t last_slide_seen = 0;
  std::vector<estimation::StratumSummary> last_cells;

  const std::int64_t slide_us = config_.window.slide_us;

  const auto sampler_for = [&](std::int64_t slide) -> Sampler& {
    auto it = open_slides.find(slide);
    if (it == open_slides.end()) {
      sampling::OasrsConfig oasrs;
      oasrs.seed = config_.seed + static_cast<std::uint64_t>(slide) * 1099511628211ULL;
      oasrs.total_budget = slide_budget_;
      it = open_slides
               .emplace(slide, std::make_unique<Sampler>(
                                   sampling::make_oasrs<engine::Record>(oasrs)))
               .first;
    }
    return *it->second;
  };

  // Per-slide weighted histograms for the optional HISTOGRAM query; the
  // window histogram is the merge of its slides' histograms.
  std::deque<Histogram> slide_histograms;
  const std::size_t slides_per_window = config_.window.slides_per_window();

  const auto close_slide = [&](std::int64_t slide) {
    std::vector<estimation::StratumSummary> cells;
    std::uint64_t seen = 0;
    std::uint64_t sampled = 0;
    auto it = open_slides.find(slide);
    if (it != open_slides.end()) {
      auto sample = it->second->take();
      if (config_.histogram) {
        slide_histograms.push_back(estimation::weighted_histogram(
            sample, engine::RecordValue{}, *config_.histogram));
      }
      cells.reserve(sample.strata.size());
      for (const auto& stratum : sample.strata) {
        estimation::StratumSummary cell;
        cell.stratum = stratum.stratum;
        cell.seen = stratum.seen;
        cell.sampled = stratum.items.size();
        cell.weight = stratum.weight;
        for (const auto& record : stratum.items) {
          const double value = config_.query_cost.charge(record.value);
          cell.sum += value;
          cell.sum_sq += value * value;
        }
        seen += cell.seen;
        sampled += cell.sampled;
        cells.push_back(cell);
      }
      open_slides.erase(it);
    } else if (config_.histogram) {
      slide_histograms.emplace_back(config_.histogram->lo,
                                    config_.histogram->hi,
                                    config_.histogram->buckets);
    }
    if (config_.histogram && slide_histograms.size() > slides_per_window) {
      slide_histograms.pop_front();
    }
    last_slide_seen = seen;
    last_cells = cells;

    bool fed_back = false;
    if (auto window = assembler.push_slide(std::move(cells))) {
      WindowOutput output;
      for (const auto& cell : window->cells) {
        output.records_seen += cell.seen;
        output.records_sampled += cell.sampled;
      }
      auto estimates = evaluate_windows({*window}, config_.query);
      output.estimate = std::move(estimates.front());
      output.budget_in_force = slide_budget_;
      if (config_.histogram) {
        Histogram merged(config_.histogram->lo, config_.histogram->hi,
                         config_.histogram->buckets);
        for (const auto& histogram : slide_histograms) {
          merged.merge(histogram);
        }
        output.histogram = std::move(merged);
      }
      on_window(output);

      // Adaptive feedback (§4.2): with an accuracy budget, grow/shrink the
      // sample size from the observed error bound.
      if (config_.budget.kind == estimation::BudgetKind::kRelativeError) {
        const double bound =
            output.estimate.overall.relative_bound(config_.z);
        slide_budget_ = feedback.update(bound);
        fed_back = true;
      }
    }
    if (!fed_back &&
        config_.budget.kind != estimation::BudgetKind::kRelativeError) {
      // Non-accuracy budgets: re-derive the sample size from the cost
      // function using the freshest arrival statistics.
      slide_budget_ = std::max<std::size_t>(
          1, cost_function.sample_size(config_.budget, last_slide_seen,
                                       last_cells));
    }
  };

  for (;;) {
    auto records = consumer.poll(config_.poll_batch, /*timeout_ms=*/50);
    if (records.empty()) {
      if (consumer.exhausted()) break;
      continue;
    }
    for (const auto& record : records) {
      const std::int64_t slide = record.event_time_us / slide_us;
      if (slide < next_to_close) continue;  // late beyond watermark: dropped
      sampler_for(slide).offer(record);
      auto& clock = partition_clock[record.stratum];
      clock = std::max(clock, record.event_time_us);
    }
    // Watermark = slowest partition's high-water mark.
    std::int64_t watermark = std::numeric_limits<std::int64_t>::max();
    for (const auto& [stratum, clock] : partition_clock) {
      watermark = std::min(watermark, clock);
    }
    if (partition_clock.empty()) continue;
    while (static_cast<std::int64_t>((next_to_close + 1)) * slide_us <=
           watermark) {
      close_slide(next_to_close);
      ++next_to_close;
    }
  }
  // Input exhausted: flush every remaining open slide in order.
  while (!open_slides.empty()) {
    const std::int64_t slide = open_slides.begin()->first;
    while (next_to_close < slide) {
      close_slide(next_to_close);  // empty slides advance the assembler
      ++next_to_close;
    }
    close_slide(slide);
    next_to_close = slide + 1;
  }
}

}  // namespace streamapprox::core
