#include "core/systems.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/pipeline_driver.h"
#include "engine/batched/dataset.h"
#include "engine/batched/scheduler.h"
#include "engine/batched/shuffle.h"
#include "engine/pipelined/aggregators.h"
#include "engine/pipelined/dataflow.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"
#include "sampling/sts.h"

namespace streamapprox::core {
namespace {

using engine::QueryCost;
using engine::Record;
using engine::RecordStratum;
using engine::batched::BatchJob;
using engine::batched::Dataset;
using engine::batched::MicroBatchConfig;
using engine::batched::Scheduler;
using engine::batched::SchedulerConfig;
using engine::batched::StreamRunResult;
using estimation::StratumSummary;
using sampling::StratifiedSample;
using sampling::StratumId;

std::size_t partitions_of(const SystemConfig& config) {
  return config.partitions != 0 ? config.partitions
                                : std::max<std::size_t>(1, 2 * config.workers);
}

/// A PipelineDriver in raw-window mode: the evaluation harness computes its
/// own accuracy metrics, so windows are collected unevaluated — the query
/// registry is bypassed entirely (no sinks are instantiated) and the timed
/// loop stays free of evaluation work. Both engine paths below run their
/// slide lifecycle through this shared driver instead of each keeping a
/// private window assembler.
PipelineDriver make_eval_driver(const engine::WindowConfig& window,
                                StreamRunResult& result) {
  PipelineDriverConfig config;
  config.window = window;
  config.evaluate = false;
  return PipelineDriver(std::move(config), nullptr,
                        [&result](engine::WindowResult w) {
                          result.windows.push_back(std::move(w));
                        });
}

/// The micro-batch saturation loop (paper §6.1 methodology) on the shared
/// slide lifecycle: batches become cells via `job`, cells close slides on
/// the driver, the driver assembles windows.
StreamRunResult run_batched_on_driver(const std::vector<Record>& records,
                                      const engine::batched::MicroBatchConfig&
                                          config,
                                      const BatchJob& job) {
  StreamRunResult result;
  auto driver = make_eval_driver(config.window, result);
  auto run = engine::batched::run_micro_batches(
      records, config, job,
      [&driver](std::size_t slide, std::vector<StratumSummary> cells) {
        driver.close_slide_cells(static_cast<std::int64_t>(slide),
                                 std::move(cells));
      });
  result.records_processed = run.records_processed;
  result.wall_seconds = run.wall_seconds;
  return result;
}

/// Accumulates one record's (possibly weighted) value into a cell map.
struct CellMap {
  std::unordered_map<StratumId, StratumSummary> cells;

  void add_exact(StratumId stratum, double value) {
    auto& cell = cells[stratum];
    cell.stratum = stratum;
    ++cell.seen;
    ++cell.sampled;
    cell.sum += value;
    cell.sum_sq += value * value;
  }

  std::vector<StratumSummary> take() {
    std::vector<StratumSummary> out;
    out.reserve(cells.size());
    for (auto& [id, cell] : cells) out.push_back(cell);
    cells.clear();
    return out;
  }
};

/// Turns a stratified sample into cells, charging the query cost per
/// SAMPLED item (the work the system actually performs).
std::vector<StratumSummary> summarize_sample(
    const StratifiedSample<Record>& sample, QueryCost work) {
  std::vector<StratumSummary> cells;
  cells.reserve(sample.strata.size());
  for (const auto& stratum : sample.strata) {
    StratumSummary cell;
    cell.stratum = stratum.stratum;
    cell.seen = stratum.seen;
    cell.sampled = stratum.items.size();
    cell.weight = stratum.weight;
    for (const Record& record : stratum.items) {
      const double value = work.charge(record.value);
      cell.sum += value;
      cell.sum_sq += value * value;
    }
    cells.push_back(cell);
  }
  return cells;
}

// ------------------------------------------------------------- Native Spark

BatchJob make_native_spark_job(Scheduler& scheduler,
                               const SystemConfig& config) {
  const std::size_t partitions = partitions_of(config);
  const QueryCost work = config.query_cost;
  return [&scheduler, partitions, work](
             std::size_t, std::span<const Record> batch) {
    // Stage 1: batch -> RDD. Stage 2: exact per-partition aggregation.
    auto dataset = Dataset<Record>::from(batch, partitions, scheduler);
    auto parts = dataset.map_partitions<std::vector<StratumSummary>>(
        [work](std::size_t, const std::vector<Record>& part) {
          CellMap cells;
          for (const Record& record : part) {
            cells.add_exact(record.stratum, work.charge(record.value));
          }
          return cells.take();
        },
        scheduler);
    std::vector<StratumSummary> out;
    for (auto& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
}

// --------------------------------------------------------------- Spark SRS

/// Distributed ScaSRS over a micro-batch (paper §4.1): a map stage assigns
/// random keys and splits records into accepted / waitlisted; the driver
/// then sorts the combined waitlist (the measured bottleneck) and tops the
/// sample up to exactly k items; a final stage aggregates the sample.
BatchJob make_spark_srs_job(Scheduler& scheduler, const SystemConfig& config,
                            std::uint64_t seed) {
  const std::size_t partitions = partitions_of(config);
  const double fraction = config.sampling_fraction;
  const QueryCost work = config.query_cost;
  struct SrsPart {
    std::vector<Record> accepted;
    std::vector<std::pair<double, Record>> waitlist;
  };
  // One RNG per partition, persistent across batches for determinism.
  auto rngs = std::make_shared<std::vector<streamapprox::Rng>>();
  {
    streamapprox::Rng root(seed);
    for (std::size_t p = 0; p < partitions; ++p) rngs->push_back(root.fork());
  }
  return [&scheduler, partitions, fraction, work, rngs](
             std::size_t, std::span<const Record> batch) {
    auto dataset = Dataset<Record>::from(batch, partitions, scheduler);
    const std::uint64_t n = batch.size();
    const auto thresholds = sampling::scasrs_thresholds(fraction, n);
    const auto k = static_cast<std::size_t>(std::max<double>(
        1.0, std::floor(fraction * static_cast<double>(n))));

    std::vector<SrsPart> parts(partitions);
    scheduler.run_stage(partitions, [&](std::size_t p) {
      auto& rng = (*rngs)[p];
      auto& part = parts[p];
      for (const Record& record : dataset.partitions()[p]) {
        const double u = rng.uniform();
        if (u < thresholds.p) {
          part.accepted.push_back(record);
        } else if (u < thresholds.q) {
          part.waitlist.emplace_back(u, record);
        }
      }
    });

    // Driver-side synchronisation: count accepted, sort the global waitlist,
    // top up to k. (This is SRS's "expensive sort" — but only over the
    // waitlist, which is O(sqrt(n log n)) items, so SRS stays much cheaper
    // than STS's full shuffle.)
    std::size_t accepted = 0;
    for (const auto& part : parts) accepted += part.accepted.size();
    std::vector<std::pair<double, Record>> waitlist;
    for (auto& part : parts) {
      waitlist.insert(waitlist.end(),
                      std::make_move_iterator(part.waitlist.begin()),
                      std::make_move_iterator(part.waitlist.end()));
    }
    std::vector<Record> topup;
    if (accepted < k && !waitlist.empty()) {
      std::sort(waitlist.begin(), waitlist.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      const std::size_t need = std::min(k - accepted, waitlist.size());
      topup.reserve(need);
      for (std::size_t i = 0; i < need; ++i) {
        topup.push_back(std::move(waitlist[i].second));
      }
    }

    // Build the sample RDD (keep per-partition locality; top-ups go to the
    // first partition) and aggregate it.
    std::vector<std::vector<Record>> sample_parts(partitions);
    std::size_t total_sampled = topup.size();
    for (std::size_t p = 0; p < partitions; ++p) {
      total_sampled += parts[p].accepted.size();
      sample_parts[p] = std::move(parts[p].accepted);
    }
    sample_parts[0].insert(sample_parts[0].end(),
                           std::make_move_iterator(topup.begin()),
                           std::make_move_iterator(topup.end()));
    const double weight =
        total_sampled > 0
            ? static_cast<double>(n) / static_cast<double>(total_sampled)
            : 1.0;

    auto sample_ds =
        Dataset<Record>::from_partitions(std::move(sample_parts));
    auto cell_parts = sample_ds.map_partitions<std::vector<StratumSummary>>(
        [work, weight](std::size_t, const std::vector<Record>& part) {
          CellMap cells;
          for (const Record& record : part) {
            cells.add_exact(record.stratum, work.charge(record.value));
          }
          auto out = cells.take();
          // SRS knows only the global population: per-stratum counts C_i are
          // NOT tracked (this is precisely how SRS "loses the capability of
          // considering each sub-stream fairly", §5.2). Expand each cell by
          // the uniform weight; the per-stratum population becomes an
          // estimate Y_i * (n/k).
          for (auto& cell : out) {
            cell.weight = weight;
            cell.seen = static_cast<std::uint64_t>(std::llround(
                static_cast<double>(cell.sampled) * weight));
          }
          return out;
        },
        scheduler);
    std::vector<StratumSummary> out;
    for (auto& part : cell_parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
}

// --------------------------------------------------------------- Spark STS

/// Spark stratified sampling (sampleByKey[Exact], §4.1): shuffle-groupBy by
/// stratum (two stages with a full barrier and full data movement), then SRS
/// within each stratum at the same fraction, then aggregate.
BatchJob make_spark_sts_job(Scheduler& scheduler, const SystemConfig& config,
                            std::uint64_t seed) {
  const std::size_t partitions = partitions_of(config);
  const double fraction = config.sampling_fraction;
  const QueryCost work = config.query_cost;
  const bool exact = config.sts_exact;
  auto rngs = std::make_shared<std::vector<streamapprox::Rng>>();
  {
    streamapprox::Rng root(seed);
    for (std::size_t p = 0; p < partitions; ++p) rngs->push_back(root.fork());
  }
  return [&scheduler, partitions, fraction, work, exact, rngs](
             std::size_t, std::span<const Record> batch) {
    auto dataset = Dataset<Record>::from(batch, partitions, scheduler);
    auto grouped = engine::batched::shuffle_group_by(
        dataset, RecordStratum{}, scheduler, partitions);

    std::vector<std::vector<StratumSummary>> reducer_cells(partitions);
    scheduler.run_stage(partitions, [&](std::size_t r) {
      auto& rng = (*rngs)[r];
      auto sample = sampling::sts_sample(grouped[r], fraction, rng, exact);
      reducer_cells[r] = summarize_sample(sample, work);
    });

    std::vector<StratumSummary> out;
    for (auto& cells : reducer_cells) {
      out.insert(out.end(), cells.begin(), cells.end());
    }
    return out;
  };
}

// ------------------------------------------------- Spark-based StreamApprox

/// OASRS on the ingest path, BEFORE RDD formation (§4.2.1 "the input data
/// items are sampled on-the-fly using our sampling module before items are
/// transformed into RDDs"). Each worker samples its slice of the batch with
/// an independent OASRS (no synchronisation); only the sample enters the
/// engine, where a single stage aggregates it.
BatchJob make_spark_approx_job(Scheduler& scheduler,
                               const SystemConfig& config,
                               std::uint64_t seed) {
  const std::size_t workers = std::max<std::size_t>(1, config.workers);
  const double fraction = config.sampling_fraction;
  const QueryCost work = config.query_cost;
  auto rngs = std::make_shared<std::vector<std::uint64_t>>();
  {
    streamapprox::Rng root(seed);
    for (std::size_t w = 0; w < workers; ++w) rngs->push_back(root.next());
  }
  return [&scheduler, workers, fraction, work, rngs](
             std::size_t batch_index, std::span<const Record> batch) {
    // Ingest path: parallel OASRS over slices of the raw batch. Not a Spark
    // stage — it runs in the (modified) Kafka connector.
    std::vector<StratifiedSample<Record>> samples(workers);
    scheduler.run_slices(
        batch.size(), workers,
        [&](std::size_t w, std::size_t begin, std::size_t end) {
          sampling::OasrsConfig oasrs;
          oasrs.total_budget = static_cast<std::size_t>(std::ceil(
              fraction * static_cast<double>(end - begin)));
          oasrs.seed = (*rngs)[w] + batch_index * 0x9e3779b97f4a7c15ULL;
          auto sampler = sampling::make_oasrs<Record>(oasrs);
          for (std::size_t i = begin; i < end; ++i) sampler.offer(batch[i]);
          samples[w] = sampler.take();
        });

    // One Spark stage: aggregate each worker's sample (the data-parallel job
    // of Algorithm 2 running on the sampled RDD).
    std::vector<std::vector<StratumSummary>> cell_parts(workers);
    scheduler.run_stage(workers, [&](std::size_t w) {
      cell_parts[w] = summarize_sample(samples[w], work);
    });
    std::vector<StratumSummary> out;
    for (auto& cells : cell_parts) {
      out.insert(out.end(), cells.begin(), cells.end());
    }
    return out;
  };
}

// ---------------------------------------------------------------- Pipelined

StreamRunResult run_pipelined(SystemKind kind,
                              const std::vector<Record>& records,
                              const SystemConfig& config) {
  engine::pipelined::PipelineConfig pipeline;
  pipeline.parallelism = std::max<std::size_t>(1, config.workers);
  pipeline.window = config.window;

  // Per-slide, per-worker sampling budget from the sampling fraction: the
  // virtual cost function's job in a live deployment; here derived from the
  // known stream rate, as the evaluation fixes fractions explicitly.
  const double duration_s =
      records.empty()
          ? 0.0
          : static_cast<double>(records.back().event_time_us) / 1e6;
  const double slides =
      std::max(1.0, duration_s * 1e6 / static_cast<double>(
                                           config.window.slide_us));
  const double per_slide_items =
      static_cast<double>(records.size()) / slides;
  const auto per_worker_budget = static_cast<std::size_t>(std::ceil(
      config.sampling_fraction * per_slide_items /
      static_cast<double>(pipeline.parallelism)));

  streamapprox::Rng root(config.seed);
  std::vector<std::uint64_t> seeds;
  for (std::size_t w = 0; w < pipeline.parallelism; ++w) {
    seeds.push_back(root.next());
  }

  const QueryCost work = config.query_cost;
  engine::pipelined::AggregatorFactory factory;
  if (kind == SystemKind::kNativeFlink) {
    factory = [work](std::size_t) {
      return std::make_unique<engine::pipelined::ExactSlideAggregator>(work);
    };
  } else {
    factory = [work, per_worker_budget, seeds](std::size_t w) {
      sampling::OasrsConfig oasrs;
      oasrs.total_budget = std::max<std::size_t>(1, per_worker_budget);
      oasrs.seed = seeds[w];
      return std::make_unique<engine::pipelined::OasrsSlideAggregator>(oasrs,
                                                                       work);
    };
  }
  // The slide lifecycle runs on the shared PipelineDriver: the dataflow's
  // collector thread feeds joined slides into the driver's cells path.
  StreamRunResult result;
  auto driver = make_eval_driver(config.window, result);
  auto run = engine::pipelined::run_pipeline(
      records, pipeline, factory,
      [&driver](std::size_t slide, std::vector<StratumSummary> cells) {
        driver.close_slide_cells(static_cast<std::int64_t>(slide),
                                 std::move(cells));
      });
  result.records_processed = run.records_processed;
  result.wall_seconds = run.wall_seconds;
  return result;
}

}  // namespace

std::string system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFlinkApprox:
      return "Flink-based StreamApprox";
    case SystemKind::kSparkApprox:
      return "Spark-based StreamApprox";
    case SystemKind::kSparkSRS:
      return "Spark-based SRS";
    case SystemKind::kSparkSTS:
      return "Spark-based STS";
    case SystemKind::kNativeSpark:
      return "Native Spark";
    case SystemKind::kNativeFlink:
      return "Native Flink";
  }
  return "?";
}

bool is_native(SystemKind kind) {
  return kind == SystemKind::kNativeSpark || kind == SystemKind::kNativeFlink;
}

bool is_batched(SystemKind kind) {
  return kind == SystemKind::kSparkApprox || kind == SystemKind::kSparkSRS ||
         kind == SystemKind::kSparkSTS || kind == SystemKind::kNativeSpark;
}

engine::batched::StreamRunResult run_system(
    SystemKind kind, const std::vector<engine::Record>& records,
    const SystemConfig& config) {
  if (!is_batched(kind)) return run_pipelined(kind, records, config);

  Scheduler scheduler(SchedulerConfig{
      .workers = std::max<std::size_t>(1, config.workers),
      .stage_overhead = config.stage_overhead,
  });
  MicroBatchConfig micro;
  micro.batch_interval_us = config.batch_interval_us;
  micro.window = config.window;

  BatchJob job;
  switch (kind) {
    case SystemKind::kNativeSpark:
      job = make_native_spark_job(scheduler, config);
      break;
    case SystemKind::kSparkSRS:
      job = make_spark_srs_job(scheduler, config, config.seed);
      break;
    case SystemKind::kSparkSTS:
      job = make_spark_sts_job(scheduler, config, config.seed);
      break;
    case SystemKind::kSparkApprox:
      job = make_spark_approx_job(scheduler, config, config.seed);
      break;
    default:
      break;
  }
  return run_batched_on_driver(records, micro, job);
}

}  // namespace streamapprox::core
