// The low-watermark policy shared by the sequential and sharded execution
// paths. Both paths MUST apply the identical rule or their outputs diverge
// (the parallel-equivalence guarantee): a slide closes only when every
// partition's high-water event time has passed its end, where
//
//   * a partition that has never delivered gates the watermark during the
//     idleness grace period, then stops gating (Kafka's idleness rule);
//   * a partition drained to a sealed end never gates;
//   * a partition with data gates by its high-water clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace streamapprox::core {

/// Clock sentinel: the partition has not delivered a record yet.
inline constexpr std::int64_t kNoClock =
    std::numeric_limits<std::int64_t>::min();
/// Clock sentinel: the partition is sealed and fully consumed.
inline constexpr std::int64_t kPartitionDrained =
    std::numeric_limits<std::int64_t>::max();

/// The outcome of one watermark evaluation over per-partition clocks.
struct WatermarkView {
  /// Low watermark over the partitions that currently gate (meaningful only
  /// when any_active).
  std::int64_t watermark = std::numeric_limits<std::int64_t>::max();
  /// A silent partition is still within its grace period: close nothing.
  bool blocked = false;
  /// At least one partition gates with a real clock.
  bool any_active = false;
  /// Every partition is drained: end-of-stream, flush everything.
  bool all_drained = true;

  /// True when slides up to `watermark` may close.
  bool can_close() const noexcept { return !blocked && any_active; }

  /// True when no partition gates at all — every one is drained or idle
  /// past grace. Buffered slides must flush now (bounded by what is open,
  /// not by a clock): otherwise a topic whose active partitions drained
  /// while an idle partition stays unsealed would strand its output
  /// forever, defeating the idleness rule's purpose. An idle partition
  /// that wakes later re-gates; its stale records are late-dropped.
  bool flush_all() const noexcept { return !blocked && !any_active; }
};

/// Applies the policy to a snapshot of per-partition clocks.
inline WatermarkView evaluate_watermark(const std::vector<std::int64_t>& clocks,
                                        bool idle_grace_over) {
  WatermarkView view;
  for (const std::int64_t clock : clocks) {
    if (clock != kPartitionDrained) view.all_drained = false;
    if (clock == kPartitionDrained) continue;
    if (clock == kNoClock) {
      if (!idle_grace_over) view.blocked = true;
      continue;
    }
    view.watermark = std::min(view.watermark, clock);
    view.any_active = true;
  }
  return view;
}

/// Collapses a WatermarkView into one policy-complete clock value:
/// kNoClock while blocked (nothing may close), kPartitionDrained when no
/// partition gates at all (flush everything), the low watermark otherwise.
///
/// The sentinel choice is what makes MULTI-EXCHANGE watermarks composable:
/// each exchange resolves its own partition subset with this function, and
/// because kNoClock sorts below every real clock and kPartitionDrained above,
/// a downstream stage min-combines the resolved values of E exchanges with a
/// second evaluate_watermark() pass (or a plain std::min) and gets exactly
/// the policy result a single exchange over the union would have produced.
inline std::int64_t resolve_watermark(const WatermarkView& view) {
  if (view.blocked) return kNoClock;
  if (view.flush_all()) return kPartitionDrained;
  return view.watermark;
}

}  // namespace streamapprox::core
