// The StreamApprox system facade — the component diagram of paper Fig. 1/3
// wired together for live operation: a Kafka-like topic feeds the sampling
// module (OASRS); the virtual cost function translates the user's query
// budget into a sample size; the error-estimation module computes rigorous
// error bounds per window; and the adaptive feedback loop re-tunes the
// sample size whenever the bound exceeds the accuracy target.
//
// This is the public API a downstream user programs against (see
// examples/quickstart.cpp); the evaluation harness in systems.h bypasses the
// live broker for reproducible saturation measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/query.h"
#include "engine/query_cost.h"
#include "estimation/cost_function.h"
#include "estimation/feedback.h"
#include "estimation/histogram_query.h"
#include "ingest/broker.h"

namespace streamapprox::core {

/// Facade configuration.
struct StreamApproxConfig {
  /// Broker topic to consume.
  std::string topic;
  /// The streaming query to execute.
  QuerySpec query{};
  /// The user's query budget (fraction / latency / tokens / accuracy).
  estimation::QueryBudget budget = estimation::QueryBudget::fraction(0.6);
  /// Sliding-window geometry.
  engine::WindowConfig window{};
  /// How many records to pull per consumer poll.
  std::size_t poll_batch = 4096;
  /// Per-record query cost model.
  engine::QueryCost query_cost{};
  /// Confidence (in standard deviations) used when reporting error bounds
  /// and when driving the feedback loop; the paper's default is 2 (95 %).
  double z = 2.0;
  /// Optional approximate HISTOGRAM query (§3.2): when set, every window
  /// output carries a weighted histogram of the sampled values estimating
  /// the full-population value distribution.
  std::optional<estimation::HistogramSpec> histogram;
  /// RNG seed.
  std::uint64_t seed = 2017;
};

/// Per-window output delivered to the user: the estimate with its error
/// bound plus the sampling effort that produced it.
struct WindowOutput {
  WindowEstimate estimate;
  std::uint64_t records_seen = 0;     ///< Σ C_i in the window
  std::uint64_t records_sampled = 0;  ///< Σ Y_i in the window
  std::size_t budget_in_force = 0;    ///< per-slide sample budget used
  /// Population-scale value histogram (present when the config asked for
  /// one): bucket masses estimate full-population counts.
  std::optional<Histogram> histogram;
};

/// The approximate stream-analytics system.
class StreamApprox {
 public:
  /// Binds to a broker topic. The topic must already exist.
  StreamApprox(ingest::Broker& broker, StreamApproxConfig config);

  /// Consumes the topic until it is exhausted (sealed and fully read),
  /// invoking `on_window` for every completed sliding window. Slides are
  /// event-time based (record timestamps), so results are independent of
  /// consumption speed.
  void run(const std::function<void(const WindowOutput&)>& on_window);

  /// The per-slide sample budget currently in force (adapted over time when
  /// the budget kind is kRelativeError).
  std::size_t current_budget() const noexcept { return slide_budget_; }

 private:
  ingest::Broker& broker_;
  StreamApproxConfig config_;
  std::size_t slide_budget_ = 0;
};

}  // namespace streamapprox::core
