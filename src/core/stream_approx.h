// The StreamApprox system facade — the component diagram of paper Fig. 1/3
// wired together for live operation: a Kafka-like topic feeds the sampling
// module (OASRS); the virtual cost function translates the user's query
// budget into a sample size; the query registry fans every assembled window
// out to N registered queries (core/query.h) whose error bounds are rigorous
// per window; and the adaptive feedback loop re-tunes the sample size
// whenever any registered accuracy target's bound is exceeded (the
// strictest query wins). The stream is ingested, sampled and windowed ONCE
// however many queries are registered.
//
// Two execution modes share the slide lifecycle in core/pipeline_driver.h:
//
//   workers == 1   one thread consumes every partition and owns every
//                  per-slide sampler (the original sequential path);
//   workers >= 2   a consumer group splits the topic's partitions across N
//                  worker threads, each sampling its sub-streams with LOCAL
//                  per-slide OASRS samplers — no synchronisation during
//                  sampling (paper §3.2 Algorithm 3) — while a merger thread
//                  closes slides by OasrsSampler::merge()-ing worker-local
//                  samplers once the global low-watermark passes.
//
// This is the public API a downstream user programs against (see
// examples/quickstart.cpp); the evaluation harness in systems.h bypasses the
// live broker for reproducible saturation measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/pipeline_driver.h"
#include "core/query.h"
#include "engine/query_cost.h"
#include "estimation/cost_function.h"
#include "estimation/feedback.h"
#include "estimation/histogram_query.h"
#include "ingest/broker.h"

namespace streamapprox::core {

/// Facade configuration.
struct StreamApproxConfig {
  /// Broker topic to consume.
  std::string topic;
  /// The registered queries, evaluated concurrently over ONE sampled stream
  /// (ingested, exchanged, sampled and windowed once; every WindowOutput
  /// carries all of their results in `WindowOutput::queries`). When empty,
  /// the legacy single-query fields below (`query`, `histogram`, `z`) map
  /// onto a one-entry set for backward compatibility.
  QuerySet queries;
  /// Legacy single streaming query, used only when `queries` is empty.
  QuerySpec query{};
  /// The user's query budget (fraction / latency / tokens / accuracy).
  estimation::QueryBudget budget = estimation::QueryBudget::fraction(0.6);
  /// Sliding-window geometry.
  engine::WindowConfig window{};
  /// How many records to pull per consumer poll.
  std::size_t poll_batch = 4096;
  /// Per-record query cost model (charged against sampled items).
  engine::QueryCost query_cost{};
  /// Per-record ingest cost model (parse / field conversion work charged
  /// against EVERY arriving record, before sampling) — the deployment work
  /// the paper's Kafka connector performs; what the sharded mode
  /// parallelises.
  engine::QueryCost ingest_cost{};
  /// Worker threads for the sharded execution mode. 1 (or 0) = sequential.
  /// With the exchange enabled (the default) the worker count is
  /// independent of the topic's partition count; with it disabled, workers
  /// consume partitions directly and parallelism is capped at the
  /// partition count.
  std::size_t workers = 1;
  /// Repartitioning exchange (sharded mode only): when true, one exchange
  /// stage polls every partition in batches and re-keys them by stratum
  /// hash onto `workers` SPSC channels — decoupling worker count from
  /// partition count and moving data between threads batch-at-a-time. When
  /// false, the consumer-group mode splits partitions across workers.
  bool use_exchange = true;
  /// Records per exchange batch (the morsel size of the batched data plane).
  std::size_t exchange_batch_size = 1024;
  /// Batches buffered per exchange channel before backpressure.
  std::size_t exchange_ring_capacity = 64;
  /// Grace period after which a partition that has NEVER delivered a record
  /// stops gating the watermark (Kafka's idleness rule), so a topic with
  /// more partitions than sub-streams still emits windows on a live,
  /// unsealed stream. Partitions that have delivered keep gating by their
  /// clock; an idle partition that wakes up re-gates (its records may be
  /// partly late-dropped, as with any late data).
  std::int64_t idle_partition_timeout_ms = 1000;
  /// Default confidence (in standard deviations) used when reporting error
  /// bounds and when driving the feedback loop; the paper's default is 2
  /// (95 %). Registered queries may override it per sink, so a 95 %-
  /// confidence SUM can coexist with a 99 %-confidence MEAN.
  double z = 2.0;
  /// Legacy optional approximate HISTOGRAM query (§3.2), used only when
  /// `queries` is empty: when set, every window output carries a weighted
  /// histogram of the sampled values estimating the full-population value
  /// distribution.
  std::optional<estimation::HistogramSpec> histogram;
  /// RNG seed.
  std::uint64_t seed = 2017;
};

/// The approximate stream-analytics system.
class StreamApprox {
 public:
  /// Binds to a broker topic. The topic must already exist.
  StreamApprox(ingest::Broker& broker, StreamApproxConfig config);

  /// Consumes the topic until it is exhausted (sealed and fully read),
  /// invoking `on_window` for every completed sliding window. Slides are
  /// event-time based (record timestamps), so results are independent of
  /// consumption speed.
  void run(const std::function<void(const WindowOutput&)>& on_window);

  /// The per-slide sample budget currently in force (adapted over time when
  /// the budget kind is kRelativeError).
  std::size_t current_budget() const noexcept { return slide_budget_; }

 private:
  /// Maps the facade configuration onto the slide-lifecycle driver's.
  PipelineDriverConfig driver_config() const;

  /// Single-threaded execution: one consumer, driver-owned samplers.
  void run_sequential(const std::function<void(const WindowOutput&)>& on_window);

  /// Sharded execution: partition-split workers + watermark-gated merger.
  void run_sharded(const std::function<void(const WindowOutput&)>& on_window);

  ingest::Broker& broker_;
  StreamApproxConfig config_;
  std::size_t slide_budget_ = 0;
};

}  // namespace streamapprox::core
