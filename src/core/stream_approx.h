// The StreamApprox system facade — the component diagram of paper Fig. 1/3
// wired together for live operation: a Kafka-like topic feeds the sampling
// module (OASRS); the virtual cost function translates the user's query
// budget into a sample size; the query registry fans every assembled window
// out to N registered queries (core/query.h) whose error bounds are rigorous
// per window; and the adaptive feedback loop re-tunes the sample size
// whenever any registered accuracy target's bound is exceeded (the
// strictest query wins). The stream is ingested, sampled and windowed ONCE
// however many queries are registered.
//
// Two execution modes share the slide lifecycle in core/pipeline_driver.h:
//
//   workers == 1   one thread consumes every partition and owns every
//                  per-slide sampler (the original sequential path);
//   workers >= 2   a consumer group splits the topic's partitions across N
//                  worker threads, each sampling its sub-streams with LOCAL
//                  per-slide OASRS samplers — no synchronisation during
//                  sampling (paper §3.2 Algorithm 3) — while a merger thread
//                  closes slides by OasrsSampler::merge()-ing worker-local
//                  samplers once the global low-watermark passes.
//
// Dynamic query lifecycle: attach_query() / detach_query() work while the
// pipeline is RUNNING, in both modes. Operations take effect at the next
// slide-close boundary — an attached query reports only windows assembled
// entirely after its attach (no partial-window results), a detached query
// retires together with its FeedbackController, and the strictest-target
// budget is rebuilt on every membership change. Each attached query may get
// its own QuerySubscription output channel so consumers drain results
// independently of the run's shared WindowOutput callback.
//
// This is the public API a downstream user programs against (see
// examples/quickstart.cpp); the evaluation harness in systems.h bypasses the
// live broker for reproducible saturation measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/pipeline_driver.h"
#include "core/query.h"
#include "engine/query_cost.h"
#include "estimation/cost_function.h"
#include "estimation/feedback.h"
#include "estimation/histogram_query.h"
#include "ingest/broker.h"

namespace streamapprox::core {

/// Facade configuration.
struct StreamApproxConfig {
  /// Broker topic to consume.
  std::string topic;
  /// The registered queries, evaluated concurrently over ONE sampled stream
  /// (ingested, exchanged, sampled and windowed once; every WindowOutput
  /// carries all of their results in `WindowOutput::queries`). When empty,
  /// the legacy single-query fields below (`query`, `histogram`, `z`) map
  /// onto a one-entry set for backward compatibility.
  QuerySet queries;
  /// Legacy single streaming query, used only when `queries` is empty.
  QuerySpec query{};
  /// The user's query budget (fraction / latency / tokens / accuracy).
  estimation::QueryBudget budget = estimation::QueryBudget::fraction(0.6);
  /// Sliding-window geometry.
  engine::WindowConfig window{};
  /// How many records to pull per consumer poll.
  std::size_t poll_batch = 4096;
  /// Per-record query cost model (charged against sampled items).
  engine::QueryCost query_cost{};
  /// Per-record ingest cost model (parse / field conversion work charged
  /// against EVERY arriving record, before sampling) — the deployment work
  /// the paper's Kafka connector performs; what the sharded mode
  /// parallelises.
  engine::QueryCost ingest_cost{};
  /// Worker threads for the sharded execution mode. 1 (or 0) = sequential.
  /// With the exchange enabled (the default) the worker count is
  /// independent of the topic's partition count; with it disabled, workers
  /// consume partitions directly and parallelism is capped at the
  /// partition count.
  std::size_t workers = 1;
  /// Repartitioning exchange (sharded mode only): when true, one exchange
  /// stage polls every partition in batches and re-keys them by stratum
  /// hash onto `workers` SPSC channels — decoupling worker count from
  /// partition count and moving data between threads batch-at-a-time. When
  /// false, the consumer-group mode splits partitions across workers.
  bool use_exchange = true;
  /// Records per exchange batch (the morsel size of the batched data plane).
  std::size_t exchange_batch_size = 1024;
  /// Batches buffered per exchange channel before backpressure.
  std::size_t exchange_ring_capacity = 64;
  /// Exchange shards (sharded+exchange mode): E instances each own the
  /// topic partitions p with p % E == index and repartition them on their
  /// own thread; the merger min-combines the per-shard watermarks. 1 (or 0)
  /// keeps the classic single-exchange layout.
  std::size_t exchanges = 1;
  /// Work-stealing morsel scheduler (sharded+exchange mode): when true,
  /// each worker transfers its channel backlog into a per-worker deque that
  /// idle workers steal from (oldest morsel first), with a shared injector
  /// queue for overflow — a skewed stratum mix no longer leaves workers
  /// idle. Stolen morsels are absorbed into the THIEF's local samplers,
  /// which OasrsSampler::merge() reconciles at slide close, so per-window
  /// records_seen is identical to the static schedule. When false, workers
  /// stay statically bound to their channels (the PR 2 behaviour — also the
  /// baseline the steal-skew benchmark measures against).
  bool work_stealing = true;
  /// Morsel capacity of each worker's steal deque (rounded up to a power of
  /// two). Small values force overflow through the injector queue; the
  /// equivalence tests use that to exercise stealing deterministically.
  std::size_t steal_deque_capacity = 64;
  /// Sample with the skip-ahead kernel (Algorithm L + bulk offers over the
  /// exchange's stratum run descriptors): per-record cost is O(accepted /
  /// arrived) amortised on saturated reservoirs, with identical sampling
  /// distribution, C_i / W_i counters, watermarks and budget accounting.
  /// false restores the bit-exact per-record Algorithm R path.
  bool skip_ahead_sampling = true;
  /// Route in the exchanges with the two-pass bulk kernel (pass 1: per-run
  /// route + histogram + stratum-table occupancy; pass 2: one reserve per
  /// destination then channel-by-channel scatter). Output-identical to the
  /// record-at-a-time loop; false restores it (the micro_exchange baseline).
  bool bulk_exchange_routing = true;
  /// Grace period after which a partition that has NEVER delivered a record
  /// stops gating the watermark (Kafka's idleness rule), so a topic with
  /// more partitions than sub-streams still emits windows on a live,
  /// unsealed stream. Partitions that have delivered keep gating by their
  /// clock; an idle partition that wakes up re-gates (its records may be
  /// partly late-dropped, as with any late data).
  std::int64_t idle_partition_timeout_ms = 1000;
  /// Default confidence (in standard deviations) used when reporting error
  /// bounds and when driving the feedback loop; the paper's default is 2
  /// (95 %). Registered queries may override it per sink, so a 95 %-
  /// confidence SUM can coexist with a 99 %-confidence MEAN.
  double z = 2.0;
  /// Legacy optional approximate HISTOGRAM query (§3.2), used only when
  /// `queries` is empty: when set, every window output carries a weighted
  /// histogram of the sampled values estimating the full-population value
  /// distribution.
  std::optional<estimation::HistogramSpec> histogram;
  /// RNG seed.
  std::uint64_t seed = 2017;
};

/// Counters and latency samples from the last sharded run — the raw
/// material of the saved-benchmark JSON trajectories. All counters are
/// totals across workers/exchanges; zeroed by every run() start (a
/// sequential run leaves everything zero except `workers`).
struct ShardedRunStats {
  std::size_t exchanges = 0;
  std::size_t workers = 0;
  /// Data batches absorbed, split by how the absorbing worker got them.
  std::uint64_t owner_pops = 0;       ///< own deque / own channel
  std::uint64_t steals = 0;           ///< taken from another worker's deque
  std::uint64_t injector_pushes = 0;  ///< deque-overflow spills
  std::uint64_t injector_pops = 0;    ///< absorbed from the injector
  std::uint64_t batches_absorbed = 0;
  std::uint64_t heartbeats_absorbed = 0;
  std::uint64_t records_absorbed = 0;
  /// Skip-ahead kernel totals (exchange mode): bulk runs fed to samplers,
  /// records accepted into reservoirs, and records skipped (arrived while
  /// the reservoir was saturated and never written — with skip-ahead on,
  /// never even read). accepts + skipped can trail records_absorbed when
  /// late runs are dropped before reaching a sampler.
  std::uint64_t sampler_bulk_runs = 0;
  std::uint64_t sampler_accepts = 0;
  std::uint64_t sampler_skipped = 0;
  /// Exchange routing totals (exchange mode, summed over shards): polling
  /// rounds that routed data and records routed, plus the bulk kernel's
  /// cost accounting — same-stratum runs walked by pass 1, StratumTable
  /// slot probes, and pass-2 destination reserves. The kernel fields stay 0
  /// when bulk_exchange_routing is false (or in group mode, which has no
  /// exchange).
  std::uint64_t exchange_rounds = 0;
  std::uint64_t exchange_records_routed = 0;
  std::uint64_t exchange_runs_walked = 0;
  std::uint64_t exchange_table_probes = 0;
  std::uint64_t exchange_scatter_reserves = 0;
  /// Records absorbed per worker index (steals shift mass between entries).
  std::vector<std::uint64_t> per_worker_records;
  /// Watermark lag sampled at each slide close: max event time routed by
  /// any exchange minus the closing slide's end (µs) — how far ingest ran
  /// ahead of the merger. Percentiles of this are the bench's lag metric.
  std::vector<std::int64_t> watermark_lag_us;
};

/// The approximate stream-analytics system.
///
/// Thread safety: run() is driven by one thread. attach_query(),
/// detach_query() and query_count() are safe from ANY thread, including
/// concurrently with a live run() (that is their purpose) and from inside
/// the run's own window callback. current_budget() is informational and
/// safe to read from the run thread between callbacks.
class StreamApprox {
 public:
  /// Binds to a broker topic. The topic must already exist.
  StreamApprox(ingest::Broker& broker, StreamApproxConfig config);

  /// Closes the channels of pre-run attaches that never reached a driver.
  ~StreamApprox();

  /// Consumes the topic until it is exhausted (sealed and fully read),
  /// invoking `on_window` for every completed sliding window. Slides are
  /// event-time based (record timestamps), so results are independent of
  /// consumption speed.
  void run(const std::function<void(const WindowOutput&)>& on_window);

  // ---- Dynamic query lifecycle (safe from any thread) --------------------

  /// Attaches a query to the pipeline — while it is RUNNING (sequential or
  /// sharded) or before run() starts. The attach takes effect at the next
  /// slide-close boundary: the query observes every slide from there on and
  /// reports only windows assembled ENTIRELY after its attach (no
  /// partial-window results). When `subscription_capacity` > 0, returns a
  /// per-query output channel the caller drains with
  /// QuerySubscription::poll() (one consumer thread); the channel closes on
  /// detach or when the run's driver is torn down, and buffered outputs
  /// stay drainable after close. Returns nullptr when no channel was
  /// requested. If the sink carries an accuracy target it joins the
  /// feedback bank seeded at the budget currently in force. Dynamic
  /// attachments are one-shot: they apply to the current (or next) run and
  /// do not modify the durable config.
  std::shared_ptr<QuerySubscription> attach_query(
      std::unique_ptr<QuerySink> sink, std::size_t subscription_capacity = 0);

  /// Detaches the query registered under `name` — config-registered or
  /// dynamically attached — at the next slide-close boundary: the sink
  /// stops observing slides, its FeedbackController (if any) retires and
  /// the strictest-target budget is rebuilt from the remaining queries
  /// (falling back to the config budget when no target remains), and its
  /// subscription channel (if any) closes after the buffered outputs.
  /// Returns true when a matching query (live, or a not-yet-applied attach,
  /// which is simply cancelled) was found.
  bool detach_query(const std::string& name);

  /// Number of queries currently registered: the live driver's
  /// boundary-applied count while running (queued operations show up once
  /// they take effect), else the configured set plus queued pre-run
  /// operations.
  std::size_t query_count() const;

  /// The per-slide sample budget currently in force (adapted over time when
  /// any registered query carries an accuracy target).
  std::size_t current_budget() const noexcept { return slide_budget_; }

  /// Scheduler/exchange counters of the most recent run() (valid after it
  /// returns; reset when the next run starts). Read from the run thread.
  const ShardedRunStats& last_run_stats() const noexcept {
    return run_stats_;
  }

 private:
  /// A dynamic attach requested before run() created a driver.
  struct PendingAttach {
    std::unique_ptr<QuerySink> sink;
    std::shared_ptr<QuerySubscription> subscription;
  };

  /// Maps the facade configuration onto the slide-lifecycle driver's.
  PipelineDriverConfig driver_config() const;

  /// True when `name` addresses a config-registered query, including the
  /// legacy sinks ("query", "histogram") a legacy config synthesizes.
  bool config_has_query(const std::string& name) const;

  /// Hands queued pre-run control operations to the freshly built driver
  /// and publishes it as the live attach/detach target.
  void install_driver(PipelineDriver& driver);

  /// Unpublishes the live driver (run_* teardown).
  void uninstall_driver();

  /// RAII wrapper: install on entry, uninstall on scope exit.
  class DriverInstallation {
   public:
    DriverInstallation(StreamApprox& system, PipelineDriver& driver)
        : system_(system) {
      system_.install_driver(driver);
    }
    ~DriverInstallation() { system_.uninstall_driver(); }
    DriverInstallation(const DriverInstallation&) = delete;
    DriverInstallation& operator=(const DriverInstallation&) = delete;

   private:
    StreamApprox& system_;
  };

  /// Single-threaded execution: one consumer, driver-owned samplers.
  void run_sequential(const std::function<void(const WindowOutput&)>& on_window);

  /// Sharded execution: partition-split workers + watermark-gated merger.
  void run_sharded(const std::function<void(const WindowOutput&)>& on_window);

  ingest::Broker& broker_;
  StreamApproxConfig config_;
  std::size_t slide_budget_ = 0;
  ShardedRunStats run_stats_;

  /// Guards the control plane hand-off (live driver pointer + queued
  /// pre-run operations). Never touched by the data plane.
  mutable std::mutex control_mutex_;
  PipelineDriver* live_driver_ = nullptr;
  std::vector<PendingAttach> pre_run_attaches_;
  std::vector<std::string> pre_run_detaches_;
};

}  // namespace streamapprox::core
